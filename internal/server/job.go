// Package server implements the solver-as-a-service layer: an
// HTTP/JSON job API over the exact solver, backed by a bounded
// worker-pool scheduler that funnels every solve through
// opt.SolveCached, a pluggable job store, per-job deadlines mapped onto
// the solver's context plumbing, and a Prometheus-style /metrics
// endpoint.
//
// The QoS contract mirrors the anytime solver contract: a job never
// "times out into an error". A deadline or budget stop yields a typed
// partial Result whose bracket [LowerBound, Incumbent] still contains
// OPT, and the job lands in StateDone with the result's Status saying
// why the search stopped. Only a request the solver could not start
// (or a hard engine failure) produces StateFailed.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/pebble"
	"repro/internal/spec"
)

// SubmitRequest is the POST /v1/jobs body: a DAG (generator spec string
// or inline JSON), the game parameters, the solver configuration and an
// optional per-job deadline. The zero values resolve to the same
// defaults the CLI tools use, with two pointer fields where the zero
// value is a meaningful non-default: ComputeCost nil means the paper's
// MPP cost 1 (0 is classic SPP free compute), Dominance nil means on.
type SubmitRequest struct {
	// DAG is a generator spec (spec.DAGSyntax, e.g. "grid:4,4");
	// DAGJSON is an inline dag.Graph JSON document. Exactly one must be
	// set.
	DAG     string          `json:"dag,omitempty"`
	DAGJSON json.RawMessage `json:"dag_json,omitempty"`

	K           int  `json:"k"`                      // processors; 0 → 1
	R           int  `json:"r,omitempty"`            // red pebbles per processor; 0 → Δin+2
	G           int  `json:"g"`                      // I/O cost (0 is legal: free I/O)
	ComputeCost *int `json:"compute_cost,omitempty"` // nil → 1 (paper MPP)
	OneShot     bool `json:"one_shot,omitempty"`

	MaxStates int    `json:"max_states,omitempty"` // 0 → unbounded
	Heuristic string `json:"heuristic,omitempty"`  // "" → "max"
	Dominance *bool  `json:"dominance,omitempty"`  // nil → true
	Witness   bool   `json:"witness,omitempty"`
	Mode      string `json:"mode,omitempty"` // "" → "deterministic"

	// TimeoutMS is the per-job wall-clock deadline in milliseconds,
	// measured from the moment a worker starts the solve (queue wait is
	// not charged against it). 0 means no deadline. A deadline stop is
	// a typed partial result (StatusCanceled), not a failure.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Build validates the request and resolves it into the instance, solver
// configuration and deadline a worker will run. It is exported (and
// deterministic) so out-of-process clients — the e2e harness in
// particular — can reproduce a server-side solve bit-for-bit.
func (req *SubmitRequest) Build() (*pebble.Instance, opt.Config, time.Duration, error) {
	var cfg opt.Config
	g, err := req.graph()
	if err != nil {
		return nil, cfg, 0, err
	}
	k := req.K
	if k == 0 {
		k = 1
	}
	r := req.R
	if r == 0 {
		r = g.MaxInDegree() + 2
	}
	p := pebble.Params{K: k, R: r, G: req.G, ComputeCost: 1, OneShot: req.OneShot}
	if req.ComputeCost != nil {
		p.ComputeCost = *req.ComputeCost
	}
	in, err := pebble.NewInstance(g, p)
	if err != nil {
		return nil, cfg, 0, err
	}

	cfg = opt.DefaultConfig(req.MaxStates)
	if req.Heuristic != "" {
		h, ok := opt.ParseHeuristicMode(req.Heuristic)
		if !ok {
			return nil, cfg, 0, fmt.Errorf(`unknown heuristic %q (accepted: "floor", "io", "max")`, req.Heuristic)
		}
		cfg.Heuristic = h
	}
	if req.Dominance != nil {
		cfg.Dominance = *req.Dominance
	}
	cfg.Witness = req.Witness
	if req.Mode != "" {
		m, ok := opt.ParseMode(req.Mode)
		if !ok {
			return nil, cfg, 0, fmt.Errorf(`unknown mode %q (accepted: "deterministic", "async")`, req.Mode)
		}
		cfg.Mode = m
	}
	if req.TimeoutMS < 0 {
		return nil, cfg, 0, fmt.Errorf("timeout_ms = %d, want ≥ 0", req.TimeoutMS)
	}
	return in, cfg, time.Duration(req.TimeoutMS) * time.Millisecond, nil
}

// graph resolves the request's DAG: exactly one of the spec string and
// the inline JSON document must be present.
func (req *SubmitRequest) graph() (*dag.Graph, error) {
	switch {
	case req.DAG != "" && len(req.DAGJSON) > 0:
		return nil, fmt.Errorf(`both "dag" and "dag_json" set; submit exactly one`)
	case req.DAG != "":
		return spec.ParseDAG(req.DAG)
	case len(req.DAGJSON) > 0:
		return dag.FromJSON(req.DAGJSON)
	}
	return nil, fmt.Errorf(`neither "dag" nor "dag_json" set; submit exactly one`)
}

// State is a job's lifecycle state. Queued and running are transient;
// done, failed and canceled are terminal.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"     // solver returned a Result (complete or typed partial)
	StateFailed   State = "failed"   // solver returned no Result at all
	StateCanceled State = "canceled" // canceled via the API before a Result mattered
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is the persistent record of one submitted solve. The scheduler
// mutates it only through JobStore.Update; runtime-only state (the
// per-job cancel function) lives in the scheduler, not here, so a
// future file- or SQL-backed store can persist Jobs as-is.
type Job struct {
	ID  string
	Req SubmitRequest

	State           State
	CancelRequested bool

	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	// Graph/instance echo, filled at submit time.
	DAGName string
	N       int
	K, R, G int

	// RootLower is the admissible root lower bound computed at submit
	// time, so a job has a meaningful bracket [RootLower, ∞) from the
	// moment it is accepted — before any search work happens.
	RootLower int64

	// Result and Err are set exactly once, by the worker that finishes
	// the job; Result is read-only from then on. Err carries the stop
	// reason (budget/deadline text) on partials and the failure message
	// on StateFailed.
	Result *opt.Result
	Err    string
}

// Bracket returns the job's current OPT bracket (lower bound,
// incumbent). Before a result exists the lower bound is the root
// heuristic bound and the incumbent is -1 (none).
func (j *Job) Bracket() (lower, incumbent int64) {
	if j.Result != nil {
		return j.Result.LowerBound, j.Result.Incumbent
	}
	return j.RootLower, -1
}

// View is the JSON shape of a job in API responses.
type View struct {
	ID              string `json:"id"`
	State           string `json:"state"`
	DAG             string `json:"dag"`
	N               int    `json:"n"`
	K               int    `json:"k"`
	R               int    `json:"r"`
	G               int    `json:"g"`
	Submitted       string `json:"submitted,omitempty"`
	Started         string `json:"started,omitempty"`
	Finished        string `json:"finished,omitempty"`
	LowerBound      int64  `json:"lower_bound"`
	Incumbent       int64  `json:"incumbent"`
	Bracket         string `json:"bracket"`
	ResultStatus    string `json:"result_status,omitempty"`
	States          int    `json:"states,omitempty"`
	Error           string `json:"error,omitempty"`
	CancelRequested bool   `json:"cancel_requested,omitempty"`
}

// ViewOf renders a job snapshot for API responses.
func ViewOf(j *Job) View {
	lower, incumbent := j.Bracket()
	v := View{
		ID:              j.ID,
		State:           string(j.State),
		DAG:             j.DAGName,
		N:               j.N,
		K:               j.K,
		R:               j.R,
		G:               j.G,
		LowerBound:      lower,
		Incumbent:       incumbent,
		Bracket:         bounds.FormatGap(lower, incumbent),
		Error:           j.Err,
		CancelRequested: j.CancelRequested,
	}
	if !j.Submitted.IsZero() {
		v.Submitted = j.Submitted.UTC().Format(time.RFC3339Nano)
	}
	if !j.Started.IsZero() {
		v.Started = j.Started.UTC().Format(time.RFC3339Nano)
	}
	if !j.Finished.IsZero() {
		v.Finished = j.Finished.UTC().Format(time.RFC3339Nano)
	}
	if j.Result != nil {
		v.ResultStatus = j.Result.Status.String()
		v.States = j.Result.States
	}
	return v
}

// resultJSON is the canonical wire shape of an opt.Result. Field order
// is fixed by the struct, so encoding is byte-deterministic.
type resultJSON struct {
	Cost       int64           `json:"cost"`
	Status     string          `json:"status"`
	LowerBound int64           `json:"lower_bound"`
	Incumbent  int64           `json:"incumbent"`
	States     int             `json:"states"`
	Pruned     int             `json:"pruned"`
	ReExpanded int             `json:"re_expanded"`
	Heuristic  string          `json:"heuristic"`
	Strategy   json.RawMessage `json:"strategy,omitempty"`
}

// EncodeResult renders a solver Result as canonical JSON (trailing
// newline included). The encoding is a pure function of the Result, so
// two byte-identical Results — e.g. a server-side deterministic solve
// and a local opt.SolveCached run of the same request — encode to
// byte-identical documents; the e2e harness asserts exactly that.
func EncodeResult(res *opt.Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("server: nil result")
	}
	rj := resultJSON{
		Cost:       res.Cost,
		Status:     res.Status.String(),
		LowerBound: res.LowerBound,
		Incumbent:  res.Incumbent,
		States:     res.States,
		Pruned:     res.Pruned,
		ReExpanded: res.ReExpanded,
		Heuristic:  res.HeuristicMode.String(),
	}
	if res.Strategy != nil {
		var buf bytes.Buffer
		if err := res.Strategy.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("server: encode strategy: %w", err)
		}
		rj.Strategy = bytes.TrimSpace(buf.Bytes())
	}
	out, err := json.Marshal(rj)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
