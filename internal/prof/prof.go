// Package prof wires the stdlib runtime/pprof profilers into the cmd
// binaries with two flags, so perf work on the solvers and schedulers can
// show flamegraph-backed numbers:
//
//	mppexp -quick -cpuprofile cpu.out E12
//	go tool pprof cpu.out
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuPath = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memPath = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

// Start begins CPU profiling if -cpuprofile was given. The returned stop
// function is idempotent, stops the CPU profile, and writes the heap
// profile if -memprofile was given; call it on every exit path (defer
// does not run through os.Exit). Must be called after flag.Parse.
func Start() (stop func(), err error) {
	var cpuFile *os.File
	if *cpuPath != "" {
		cpuFile, err = os.Create(*cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *memPath != "" {
			f, err := os.Create(*memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
