package trace

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/sched"
)

func setup(t *testing.T) (*pebble.Instance, *pebble.Strategy, *pebble.Report) {
	t.Helper()
	in := pebble.MustInstance(gen.Chain(5), pebble.MPP(2, 2, 3))
	s, err := sched.Baseline{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pebble.Replay(in, s)
	if err != nil {
		t.Fatal(err)
	}
	return in, s, rep
}

func TestSummary(t *testing.T) {
	in, _, rep := setup(t)
	s := Summary(in, rep)
	for _, want := range []string{"cost=", "io=", "surplus="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestPerProcessor(t *testing.T) {
	_, _, rep := setup(t)
	var b strings.Builder
	PerProcessor(&b, rep)
	out := b.String()
	if !strings.Contains(out, "p0") || !strings.Contains(out, "p1") {
		t.Errorf("missing processor rows: %s", out)
	}
}

func TestTimelineLimit(t *testing.T) {
	_, s, _ := setup(t)
	var b strings.Builder
	Timeline(&b, s, 3)
	if got := strings.Count(b.String(), "\n"); got != 4 { // 3 moves + elision line
		t.Errorf("timeline lines = %d, want 4: %s", got, b.String())
	}
	var full strings.Builder
	Timeline(&full, s, 0)
	if strings.Contains(full.String(), "more moves") {
		t.Error("limit 0 should print everything")
	}
}

func TestGantt(t *testing.T) {
	_, s, _ := setup(t)
	out := Gantt(s, 2, 50)
	if !strings.HasPrefix(out, "p0 ") || !strings.Contains(out, "\np1 ") {
		t.Errorf("gantt shape wrong: %q", out)
	}
	if !strings.Contains(out, "C") || !strings.Contains(out, "W") {
		t.Errorf("gantt missing ops: %q", out)
	}
}
