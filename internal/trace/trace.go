// Package trace renders pebbling strategies and cost reports for humans:
// one-line summaries, per-processor breakdowns, and step-by-step timelines
// of small strategies.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/pebble"
)

// Summary formats the headline numbers of a report in one line.
func Summary(in *pebble.Instance, rep *pebble.Report) string {
	return fmt.Sprintf(
		"cost=%d (io=%d, compute=%d) | moves: %d io, %d compute, %d delete | actions: %d io, %d compute (%d recomputed) | surplus=%.1f",
		rep.Cost, rep.IOCost, rep.ComputeCost,
		rep.IOMoves, rep.ComputeMoves, rep.DeleteMoves,
		rep.IOActions, rep.ComputeActions, rep.Recomputations,
		rep.Surplus(in.N(), in.K))
}

// PerProcessor writes a per-processor work/I/O/memory table.
func PerProcessor(w io.Writer, rep *pebble.Report) {
	fmt.Fprintf(w, "%-6s %10s %10s %10s\n", "proc", "computed", "io-ops", "peak-red")
	for p := range rep.PerProcComputed {
		fmt.Fprintf(w, "p%-5d %10d %10d %10d\n",
			p, rep.PerProcComputed[p], rep.PerProcIO[p], rep.MaxRedInUse[p])
	}
}

// Timeline writes the move sequence, one move per line, up to limit moves
// (0 means all). Intended for small gadget strategies.
func Timeline(w io.Writer, s *pebble.Strategy, limit int) {
	n := len(s.Moves)
	if limit <= 0 || limit > n {
		limit = n
	}
	for i := 0; i < limit; i++ {
		fmt.Fprintf(w, "%5d  %s\n", i, s.Moves[i])
	}
	if limit < n {
		fmt.Fprintf(w, "…      (%d more moves)\n", n-limit)
	}
}

// Gantt renders a compact per-processor activity strip for strategies of
// up to width costed moves: 'C' compute, 'W' write, 'R' read, '.' idle.
// Delete moves are skipped (they are free and instantaneous).
func Gantt(s *pebble.Strategy, k, width int) string {
	lines := make([]strings.Builder, k)
	steps := 0
	for _, m := range s.Moves {
		if m.Kind == pebble.OpDelete {
			continue
		}
		if steps >= width {
			break
		}
		steps++
		active := map[int]byte{}
		var ch byte
		switch m.Kind {
		case pebble.OpCompute:
			ch = 'C'
		case pebble.OpWrite:
			ch = 'W'
		case pebble.OpRead:
			ch = 'R'
		}
		for _, a := range m.Actions {
			if a.Proc >= 0 && a.Proc < k {
				active[a.Proc] = ch
			}
		}
		for p := 0; p < k; p++ {
			if c, ok := active[p]; ok {
				lines[p].WriteByte(c)
			} else {
				lines[p].WriteByte('.')
			}
		}
	}
	var out strings.Builder
	for p := 0; p < k; p++ {
		fmt.Fprintf(&out, "p%d %s\n", p, lines[p].String())
	}
	return out.String()
}
